// Package planner turns questions into probe sequences. Where /v1/sweep
// enumerates a grid, a plan searches it: a strategy (knee bisection, Pareto
// refinement, budgeted halving) consumes runner.Axes plus a typed
// objective/constraint block and decides which Spec to execute next from
// what it has already observed.
//
// Strategies are data, like knobs and analysis rules: a table in
// strategies.go that a drift test walks. Every probe is an ordinary Spec
// executed through whatever Prober the caller supplies — the in-process
// runner, or the daemon's cache → singleflight → cluster path — so probes
// land in the content-addressed cache and a repeated question replays from
// it. Probe sequences are deterministic: axis values are sorted and
// deduplicated up front, every tie among equally good points breaks toward
// the smaller Spec.Key, and probes run sequentially, so the same Question
// yields a byte-identical transcript.
package planner

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/runner"
	"repro/internal/system"
)

// ---------------------------------------------------------------------------
// Metric registry

// Metric names one scalar a plan can optimize or constrain, extracted from
// a run's Results. Maximize is the metric's natural direction: an Objective
// without an explicit goal inherits it, and slack-of-best constraints use
// it to orient analysis.WithinSlack.
type Metric struct {
	Name     string
	Desc     string
	Maximize bool
	Eval     func(system.Results) float64
}

var metricTable = []Metric{
	{"cycles", "execution time in cycles", false,
		func(r system.Results) float64 { return float64(r.Cycles) }},
	{"energy", "total energy (pJ)", false,
		func(r system.Results) float64 { return r.Energy.Total() }},
	{"edp", "energy-delay product (pJ·cycles)", false,
		func(r system.Results) float64 { return r.Energy.Total() * float64(r.Cycles) }},
	{"traffic", "total NoC packets", false,
		func(r system.Results) float64 { return float64(r.TotalPkts) }},
	{"hit_ratio", "coherence-filter hit ratio", true,
		func(r system.Results) float64 { return r.FilterHitRatio }},
}

// Metrics returns the metric registry in declaration order.
func Metrics() []Metric {
	out := make([]Metric, len(metricTable))
	copy(out, metricTable)
	return out
}

// MetricByName resolves a registry metric.
func MetricByName(name string) (Metric, bool) {
	for _, m := range metricTable {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MetricNames returns the registered metric names, for error messages.
func MetricNames() []string {
	names := make([]string, len(metricTable))
	for i, m := range metricTable {
		names[i] = m.Name
	}
	return names
}

// evalMetrics extracts every registry metric from one run.
func evalMetrics(r system.Results) map[string]float64 {
	out := make(map[string]float64, len(metricTable))
	for _, m := range metricTable {
		out[m.Name] = m.Eval(r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Questions

// Objective names a metric to optimize. Goal overrides the metric's natural
// direction ("min" or "max"; empty inherits it).
type Objective struct {
	Metric string `json:"metric"`
	Goal   string `json:"goal,omitempty"`
}

// maximize resolves the optimization direction; callers validate first.
func (o Objective) maximize() bool {
	if o.Goal != "" {
		return o.Goal == "max"
	}
	m, _ := MetricByName(o.Metric)
	return m.Maximize
}

// Constraint is a metric predicate a knee plan bisects against. Exactly one
// form is set: an absolute bound (Op ">=" or "<=" against Value), or
// SlackOfBest — "within this factor of the best observed value", the
// analyzer's knee rule (analysis.WithinSlack), e.g. 0.99 for hit_ratio.
type Constraint struct {
	Metric      string  `json:"metric"`
	Op          string  `json:"op,omitempty"`
	Value       float64 `json:"value,omitempty"`
	SlackOfBest float64 `json:"slack_of_best,omitempty"`
}

// Question is one planner invocation: a strategy, the axes it may move, and
// what "good" means. Exactly one benchmark and one system must be swept —
// a plan answers a question about one workload on one machine; compare
// machines by asking twice.
type Question struct {
	Strategy string      `json:"strategy"`
	Axes     runner.Axes `json:"-"`

	// Objective drives halving; Objectives (2–3) drive pareto; Constraint
	// drives knee.
	Objective  Objective   `json:"objective,omitempty"`
	Objectives []Objective `json:"objectives,omitempty"`
	Constraint *Constraint `json:"constraint,omitempty"`

	// Pick orients knee bisection: the "smallest" (default) or "largest"
	// axis value satisfying the constraint.
	Pick string `json:"pick,omitempty"`

	// Budget caps the number of executed probes (memoized repeats are
	// free). 0 means the strategy's default.
	Budget int `json:"budget,omitempty"`
}

// pick normalizes the bisection direction.
func (q Question) pick() string {
	if q.Pick == "" {
		return "smallest"
	}
	return q.Pick
}

// maxGrid caps the cross-product cardinality a plan will consider; a grid
// that large should be narrowed, not searched blind.
const maxGrid = 1 << 16

// Validate rejects malformed questions before any probe runs, so the
// service can answer 400 instead of streaming an error mid-plan.
func (q Question) Validate() error {
	st, ok := StrategyByName(q.Strategy)
	if !ok {
		return fmt.Errorf("planner: unknown strategy %q (want one of %v)", q.Strategy, StrategyNames())
	}
	if len(q.Axes.Benchmarks) != 1 {
		return fmt.Errorf("planner: a plan needs exactly one benchmark, got %d", len(q.Axes.Benchmarks))
	}
	if len(q.Axes.Systems) != 1 {
		return fmt.Errorf("planner: a plan needs exactly one system, got %d", len(q.Axes.Systems))
	}
	axes := len(q.Axes.Knobs) + len(q.Axes.WParams)
	if axes < 1 || axes > 3 {
		return fmt.Errorf("planner: a plan searches 1 to 3 axes, got %d", axes)
	}
	for _, ax := range q.Axes.Knobs {
		if len(dedupSorted(ax.Values)) < 2 {
			return fmt.Errorf("planner: axis %q needs at least 2 distinct values", ax.Name)
		}
	}
	for _, ax := range q.Axes.WParams {
		if len(dedupSorted(ax.Values)) < 2 {
			return fmt.Errorf("planner: axis %q needs at least 2 distinct values", ax.Name)
		}
	}
	switch q.Pick {
	case "", "smallest", "largest":
	default:
		return fmt.Errorf("planner: pick must be \"smallest\" or \"largest\", got %q", q.Pick)
	}
	if q.Budget < 0 {
		return fmt.Errorf("planner: budget must be non-negative, got %d", q.Budget)
	}
	checkObjective := func(o Objective) error {
		if _, ok := MetricByName(o.Metric); !ok {
			return fmt.Errorf("planner: unknown metric %q (want one of %v)", o.Metric, MetricNames())
		}
		switch o.Goal {
		case "", "min", "max":
		default:
			return fmt.Errorf("planner: objective goal must be \"min\" or \"max\", got %q", o.Goal)
		}
		return nil
	}
	switch st.Name {
	case "knee":
		if axes != 1 {
			return fmt.Errorf("planner: knee bisects exactly one axis, got %d", axes)
		}
		if q.Constraint == nil {
			return errors.New("planner: knee needs a constraint (e.g. hit_ratio within slack of best)")
		}
		c := *q.Constraint
		if _, ok := MetricByName(c.Metric); !ok {
			return fmt.Errorf("planner: unknown metric %q (want one of %v)", c.Metric, MetricNames())
		}
		abs := c.Op != "" || c.Value != 0
		if abs == (c.SlackOfBest != 0) {
			return errors.New("planner: constraint needs exactly one of op+value or slack_of_best")
		}
		if abs && c.Op != ">=" && c.Op != "<=" {
			return fmt.Errorf("planner: constraint op must be \">=\" or \"<=\", got %q", c.Op)
		}
		if c.SlackOfBest < 0 {
			return errors.New("planner: slack_of_best must be positive")
		}
	case "pareto":
		if len(q.Objectives) < 2 || len(q.Objectives) > 3 {
			return fmt.Errorf("planner: pareto needs 2 or 3 objectives, got %d", len(q.Objectives))
		}
		seen := map[string]bool{}
		for _, o := range q.Objectives {
			if err := checkObjective(o); err != nil {
				return err
			}
			if seen[o.Metric] {
				return fmt.Errorf("planner: duplicate pareto objective %q", o.Metric)
			}
			seen[o.Metric] = true
		}
		if q.Constraint != nil {
			return errors.New("planner: pareto takes objectives, not a constraint")
		}
	case "halving":
		if q.Objective.Metric == "" {
			return errors.New("planner: halving needs an objective metric")
		}
		if err := checkObjective(q.Objective); err != nil {
			return err
		}
	}
	return nil
}

// budget resolves the effective probe cap.
func (q Question) budget() int {
	if q.Budget > 0 {
		return q.Budget
	}
	st, _ := StrategyByName(q.Strategy)
	return st.DefaultBudget
}

// ---------------------------------------------------------------------------
// The search grid

// dim is one searchable axis: its registry name, kind, and sorted distinct
// values.
type dim struct {
	name string
	kind string // "knob" or "param"
	vals []int
}

// grid materializes the candidate Spec space once, up front, so strategies
// address points by index vector and every probe reuses Axes.Specs's
// validation and enumeration order (knobs outer in declared order, params
// innermost).
type grid struct {
	dims    []dim
	strides []int
	specs   []system.Spec
}

func dedupSorted(vals []int) []int {
	out := append([]int(nil), vals...)
	sort.Ints(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// newGrid sorts and deduplicates every axis (the determinism contract: a
// Question's probe sequence is independent of how the caller spelled the
// axis values), enumerates the Specs, and computes index strides.
func newGrid(q Question) (*grid, error) {
	ax := q.Axes
	ax.Knobs = append([]runner.KnobAxis(nil), ax.Knobs...)
	ax.WParams = append([]runner.ParamAxis(nil), ax.WParams...)
	g := &grid{}
	for i, k := range ax.Knobs {
		ax.Knobs[i].Values = dedupSorted(k.Values)
		g.dims = append(g.dims, dim{k.Name, "knob", ax.Knobs[i].Values})
	}
	for i, p := range ax.WParams {
		ax.WParams[i].Values = dedupSorted(p.Values)
		g.dims = append(g.dims, dim{p.Name, "param", ax.WParams[i].Values})
	}
	specs, err := ax.Specs()
	if err != nil {
		return nil, err
	}
	if len(specs) > maxGrid {
		return nil, fmt.Errorf("planner: grid has %d points, cap is %d — narrow an axis", len(specs), maxGrid)
	}
	g.specs = specs
	g.strides = make([]int, len(g.dims))
	stride := 1
	for i := len(g.dims) - 1; i >= 0; i-- {
		g.strides[i] = stride
		stride *= len(g.dims[i].vals)
	}
	if stride != len(specs) {
		return nil, fmt.Errorf("planner: internal: %d specs for a %d-point grid", len(specs), stride)
	}
	return g, nil
}

// flat maps an index vector to its Spec's position in enumeration order.
func (g *grid) flat(at []int) int {
	f := 0
	for i, v := range at {
		f += v * g.strides[i]
	}
	return f
}

// axes names the point for streaming: axis name → concrete value.
func (g *grid) axes(at []int) map[string]int {
	out := make(map[string]int, len(g.dims))
	for i, d := range g.dims {
		out[d.name] = d.vals[at[i]]
	}
	return out
}

// ---------------------------------------------------------------------------
// Probing

// Prober executes one Spec and reports whether the result was served from
// cache. The service wraps its cache → singleflight → cluster path in one;
// LocalProber runs in-process.
type Prober interface {
	Probe(ctx context.Context, sp system.Spec) (system.Results, bool, error)
}

// LocalProber executes probes in-process with no cache; every probe counts
// as a miss. cmd/experiments uses it for daemon-free planning.
type LocalProber struct{}

// Probe implements Prober.
func (LocalProber) Probe(ctx context.Context, sp system.Spec) (system.Results, bool, error) {
	r := runner.RunOne(ctx, sp)
	return r.Res, false, r.Err
}

// Probe is one streamed plan event: the n-th Spec the strategy executed.
// Memoized repeats within a plan are not re-emitted — Index counts distinct
// executions, so the transcript of a replayed Question is byte-identical.
type Probe struct {
	Index   int                `json:"index"`
	Key     string             `json:"key"`
	Cached  bool               `json:"cached"`
	Axes    map[string]int     `json:"axes"`
	Metrics map[string]float64 `json:"metrics"`
}

// Answer is one recommended point: its Spec key, axis values, and metrics.
type Answer struct {
	Key     string             `json:"key"`
	Axes    map[string]int     `json:"axes"`
	Metrics map[string]float64 `json:"metrics"`
}

// Verdict is a plan's final event. Converged=false means the budget ran out
// first and Answer/Frontier are best-effort. Grid is the full cross-product
// cardinality the strategy searched without enumerating.
type Verdict struct {
	Strategy  string   `json:"strategy"`
	Converged bool     `json:"converged"`
	Reason    string   `json:"reason"`
	Answer    *Answer  `json:"answer,omitempty"`
	Frontier  []Answer `json:"frontier,omitempty"`
	Probes    int      `json:"probes"`
	CacheHits int      `json:"cache_hits"`
	Grid      int      `json:"grid"`
}

// ErrBudget aborts a strategy when its probe budget is spent; Run converts
// it into a best-effort Verdict rather than an error.
var ErrBudget = errors.New("planner: probe budget exhausted")

// session is the strategies' execution context: the grid, the prober, the
// budget, and a memo so revisited points cost nothing and never re-emit.
type session struct {
	ctx    context.Context
	g      *grid
	p      Prober
	emit   func(Probe) error
	budget int

	probes, hits int
	memo         map[int]map[string]float64
}

// probe measures one grid point, memoized by flat index. The returned map
// holds every registry metric.
func (s *session) probe(at []int) (map[string]float64, error) {
	flat := s.g.flat(at)
	if vals, ok := s.memo[flat]; ok {
		return vals, nil
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.probes >= s.budget {
		return nil, ErrBudget
	}
	sp := s.g.specs[flat]
	res, cached, err := s.p.Probe(s.ctx, sp)
	if err != nil {
		return nil, fmt.Errorf("probe %s: %w", sp.Key(), err)
	}
	s.probes++
	if cached {
		s.hits++
	}
	vals := evalMetrics(res)
	s.memo[flat] = vals
	if s.emit != nil {
		if err := s.emit(Probe{
			Index: s.probes, Key: sp.Key(), Cached: cached,
			Axes: s.g.axes(at), Metrics: vals,
		}); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// answer packages an already-probed point.
func (s *session) answer(at []int) *Answer {
	return &Answer{
		Key:     s.g.specs[s.g.flat(at)].Key(),
		Axes:    s.g.axes(at),
		Metrics: s.memo[s.g.flat(at)],
	}
}

// key is the probed point's Spec key, the universal tie-breaker.
func (s *session) key(at []int) string {
	return s.g.specs[s.g.flat(at)].Key()
}

// Run answers one Question by probing through p, streaming each executed
// probe to emit (nil to discard) and returning the final Verdict. A spent
// budget yields (Verdict{Converged: false, ...}, nil); errors are probe
// failures, cancellation, or invalid questions.
func Run(ctx context.Context, q Question, p Prober, emit func(Probe) error) (Verdict, error) {
	if err := q.Validate(); err != nil {
		return Verdict{}, err
	}
	g, err := newGrid(q)
	if err != nil {
		return Verdict{}, err
	}
	st, _ := StrategyByName(q.Strategy)
	s := &session{
		ctx: ctx, g: g, p: p, emit: emit,
		budget: q.budget(), memo: map[int]map[string]float64{},
	}
	v, err := st.run(s, q)
	if errors.Is(err, ErrBudget) {
		// Already shaped by the strategy; defensive default otherwise.
		if v.Reason == "" {
			v.Reason = fmt.Sprintf("budget of %d probes exhausted", s.budget)
		}
		err = nil
	}
	if err != nil {
		return Verdict{}, err
	}
	v.Strategy = st.Name
	v.Probes = s.probes
	v.CacheHits = s.hits
	v.Grid = len(g.specs)
	return v, nil
}
