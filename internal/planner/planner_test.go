package planner

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/system"
)

// fakeProber synthesizes Results from the materialized config, so tests
// control the metric surface exactly and run in microseconds.
type fakeProber struct {
	fn     func(cfg config.Config) system.Results
	keys   []string // every executed probe, in order
	cached bool
}

func (f *fakeProber) Probe(_ context.Context, sp system.Spec) (system.Results, bool, error) {
	f.keys = append(f.keys, sp.Key())
	return f.fn(sp.Config()), f.cached, nil
}

// saturatingHit models the paper's filter behaviour: the hit ratio climbs
// with filter_entries and saturates at 32.
func saturatingHit(cfg config.Config) system.Results {
	hit := float64(cfg.FilterEntries) / 32
	if hit > 1 {
		hit = 1
	}
	return system.Results{FilterHitRatio: hit, Cycles: 1000, TotalPkts: 100}
}

func seq(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

func filterAxes(vals []int) runner.Axes {
	return runner.Axes{
		Benchmarks: []string{"IS"},
		Systems:    []config.MemorySystem{config.HybridReal},
		Cores:      4,
		Knobs:      []runner.KnobAxis{{Name: "filter_entries", Values: vals}},
	}
}

func TestKneeMatchesGridAnswer(t *testing.T) {
	vals := seq(4, 64, 4) // 16 values
	q := Question{
		Strategy:   "knee",
		Axes:       filterAxes(vals),
		Constraint: &Constraint{Metric: "hit_ratio", SlackOfBest: 0.99},
	}
	p := &fakeProber{fn: saturatingHit}
	v, err := Run(context.Background(), q, p, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged {
		t.Fatalf("not converged: %s", v.Reason)
	}

	// The exhaustive grid answer: smallest value whose hit ratio is within
	// slack of the best over the whole axis.
	best := 0.0
	for _, val := range vals {
		if h := saturatingHit(config.Config{FilterEntries: val}).FilterHitRatio; h > best {
			best = h
		}
	}
	want := 0
	for _, val := range vals {
		if saturatingHit(config.Config{FilterEntries: val}).FilterHitRatio >= 0.99*best {
			want = val
			break
		}
	}
	if got := v.Answer.Axes["filter_entries"]; got != want {
		t.Errorf("knee answer filter_entries=%d, grid says %d", got, want)
	}
	if v.Grid != len(vals) {
		t.Errorf("Grid = %d, want %d", v.Grid, len(vals))
	}
	// Acceptance: at most half the probes of the exhaustive sweep.
	if v.Probes > len(vals)/2 {
		t.Errorf("knee used %d probes, grid sweep uses %d; want <= %d", v.Probes, len(vals), len(vals)/2)
	}
	if v.Probes != len(p.keys) {
		t.Errorf("verdict says %d probes, prober executed %d", v.Probes, len(p.keys))
	}
}

func TestKneeDeterministicTranscript(t *testing.T) {
	// Unsorted, duplicated axis values: the grid normalizes them, so the
	// spelling must not change the transcript.
	q1 := Question{
		Strategy:   "knee",
		Axes:       filterAxes([]int{64, 4, 32, 8, 16, 48, 4, 24, 40, 56}),
		Constraint: &Constraint{Metric: "hit_ratio", SlackOfBest: 0.99},
	}
	q2 := q1
	q2.Axes = filterAxes([]int{4, 8, 16, 24, 32, 40, 48, 56, 64})

	run := func(q Question) ([]Probe, Verdict) {
		var tr []Probe
		v, err := Run(context.Background(), q, &fakeProber{fn: saturatingHit}, func(p Probe) error {
			tr = append(tr, p)
			return nil
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return tr, v
	}
	tr1, v1 := run(q1)
	tr2, v2 := run(q2)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Errorf("transcripts differ:\n%v\n%v", tr1, tr2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("verdicts differ:\n%+v\n%+v", v1, v2)
	}
	if len(tr1) == 0 || tr1[len(tr1)-1].Index != len(tr1) {
		t.Errorf("probe indices not sequential: %v", tr1)
	}
}

func TestKneePickLargest(t *testing.T) {
	// Cycles grow linearly with the axis; the largest value holding
	// cycles <= 1000 is 40.
	fn := func(cfg config.Config) system.Results {
		return system.Results{Cycles: uint64(25 * cfg.FilterEntries)}
	}
	q := Question{
		Strategy:   "knee",
		Axes:       filterAxes(seq(8, 64, 8)),
		Constraint: &Constraint{Metric: "cycles", Op: "<=", Value: 1000},
		Pick:       "largest",
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: fn}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged || v.Answer == nil {
		t.Fatalf("verdict: %+v", v)
	}
	if got := v.Answer.Axes["filter_entries"]; got != 40 {
		t.Errorf("largest filter_entries with cycles<=1000: got %d, want 40", got)
	}
}

func TestKneeInfeasible(t *testing.T) {
	q := Question{
		Strategy:   "knee",
		Axes:       filterAxes(seq(8, 64, 8)),
		Constraint: &Constraint{Metric: "hit_ratio", Op: ">=", Value: 2}, // impossible
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: saturatingHit}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged || v.Answer != nil {
		t.Fatalf("infeasible question should converge with no answer: %+v", v)
	}
	if v.Probes != 1 {
		t.Errorf("infeasibility should cost one probe, used %d", v.Probes)
	}
}

func TestKneeBudgetExhaustion(t *testing.T) {
	q := Question{
		Strategy:   "knee",
		Axes:       filterAxes(seq(4, 64, 4)),
		Constraint: &Constraint{Metric: "hit_ratio", SlackOfBest: 0.99},
		Budget:     2, // generous + frugal end, then the bisection starves
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: saturatingHit}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Converged {
		t.Fatalf("budget 2 cannot converge a 16-value bisection: %+v", v)
	}
	if v.Probes != 2 {
		t.Errorf("probes = %d, want exactly the budget 2", v.Probes)
	}
	// Best effort: the satisfying end is still a correct (non-minimal) answer.
	if v.Answer == nil || v.Answer.Axes["filter_entries"] != 64 {
		t.Errorf("best-effort answer should be the known-satisfying end: %+v", v.Answer)
	}
	if !strings.Contains(v.Reason, "budget") {
		t.Errorf("reason should mention the budget: %q", v.Reason)
	}
}

func TestHalvingBudgetExhaustion(t *testing.T) {
	fn := func(cfg config.Config) system.Results {
		return system.Results{Cycles: uint64(100000 / cfg.FilterEntries)}
	}
	q := Question{
		Strategy:  "halving",
		Axes:      filterAxes(seq(4, 64, 4)),
		Objective: Objective{Metric: "cycles"},
		Budget:    3,
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: fn}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Converged {
		t.Fatalf("budget 3 should exhaust: %+v", v)
	}
	if v.Probes != 3 {
		t.Errorf("probes = %d, want 3", v.Probes)
	}
	if v.Answer == nil {
		t.Fatal("best-effort verdict should carry the incumbent")
	}
}

func TestHalvingConvergesToMonotoneBest(t *testing.T) {
	fn := func(cfg config.Config) system.Results {
		return system.Results{Cycles: uint64(100000 / cfg.FilterEntries)}
	}
	vals := seq(4, 64, 4)
	q := Question{
		Strategy:  "halving",
		Axes:      filterAxes(vals),
		Objective: Objective{Metric: "cycles"},
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: fn}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged {
		t.Fatalf("not converged: %s", v.Reason)
	}
	if got := v.Answer.Axes["filter_entries"]; got != 64 {
		t.Errorf("min cycles is at filter_entries=64, got %d", got)
	}
	if v.Probes >= len(vals) {
		t.Errorf("halving used %d probes, no better than the %d-point grid", v.Probes, len(vals))
	}
}

func TestParetoExactOnSmallGrid(t *testing.T) {
	// 3x3 grid: strides start at 1, so the lattice is exhaustive and the
	// frontier must equal the brute-force one. Cycles fall with both axes,
	// traffic rises with filter entries only — so for any fixed
	// filter_entries, larger l1d_size dominates, and the frontier is the
	// l1d_size=max row.
	fn := func(cfg config.Config) system.Results {
		return system.Results{
			Cycles:    uint64(100000 - 100*cfg.FilterEntries - cfg.L1DSize/64),
			TotalPkts: uint64(10 * cfg.FilterEntries),
		}
	}
	ax := filterAxes([]int{8, 16, 32})
	ax.Knobs = append(ax.Knobs, runner.KnobAxis{Name: "l1d_size", Values: []int{16384, 32768, 65536}})
	q := Question{
		Strategy:   "pareto",
		Axes:       ax,
		Objectives: []Objective{{Metric: "cycles"}, {Metric: "traffic"}},
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: fn}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged {
		t.Fatalf("not converged: %s", v.Reason)
	}
	if len(v.Frontier) != 3 {
		t.Fatalf("frontier has %d points, want 3 (one per filter size, all at l1d_size max): %+v", len(v.Frontier), v.Frontier)
	}
	for _, a := range v.Frontier {
		if a.Axes["l1d_size"] != 65536 {
			t.Errorf("frontier point off the dominating l1d_size=65536 row: %+v", a)
		}
	}
	if v.Probes != 9 {
		t.Errorf("3x3 grid at stride 1 should probe all 9 points, got %d", v.Probes)
	}
}

func TestParetoPrunesDominatedRegion(t *testing.T) {
	// A larger axis where the frontier lives at high filter_entries: the
	// dominated low end should not be fully enumerated.
	fn := func(cfg config.Config) system.Results {
		hit := math.Min(1, float64(cfg.FilterEntries)/32)
		return system.Results{
			Cycles:    uint64(2000 - 1000*hit),
			TotalPkts: uint64(50 + cfg.FilterEntries/8),
		}
	}
	ax := filterAxes(seq(4, 64, 4))
	ax.Knobs = append(ax.Knobs, runner.KnobAxis{Name: "l1d_size", Values: []int{16384, 32768, 65536}})
	q := Question{
		Strategy:   "pareto",
		Axes:       ax,
		Objectives: []Objective{{Metric: "cycles"}, {Metric: "traffic"}},
	}
	v, err := Run(context.Background(), q, &fakeProber{fn: fn}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Converged {
		t.Fatalf("not converged: %s", v.Reason)
	}
	if grid := 16 * 3; v.Probes >= grid {
		t.Errorf("pareto probed %d of %d points: no pruning happened", v.Probes, grid)
	}
	if len(v.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

func TestValidate(t *testing.T) {
	good := Question{
		Strategy:   "knee",
		Axes:       filterAxes(seq(8, 64, 8)),
		Constraint: &Constraint{Metric: "hit_ratio", SlackOfBest: 0.99},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good question rejected: %v", err)
	}
	bad := []struct {
		name   string
		mut    func(q *Question)
		errSub string
	}{
		{"unknown strategy", func(q *Question) { q.Strategy = "oracle" }, "unknown strategy"},
		{"no benchmark", func(q *Question) { q.Axes.Benchmarks = nil }, "exactly one benchmark"},
		{"two systems", func(q *Question) {
			q.Axes.Systems = append(q.Axes.Systems, config.CacheBased)
		}, "exactly one system"},
		{"no axes", func(q *Question) { q.Axes.Knobs = nil }, "1 to 3 axes"},
		{"single-value axis", func(q *Question) { q.Axes.Knobs[0].Values = []int{8, 8} }, "2 distinct values"},
		{"no constraint", func(q *Question) { q.Constraint = nil }, "needs a constraint"},
		{"both forms", func(q *Question) {
			q.Constraint = &Constraint{Metric: "hit_ratio", Op: ">=", Value: 0.9, SlackOfBest: 0.99}
		}, "exactly one of"},
		{"bad metric", func(q *Question) { q.Constraint.Metric = "iq" }, "unknown metric"},
		{"bad pick", func(q *Question) { q.Pick = "median" }, "pick must be"},
		{"negative budget", func(q *Question) { q.Budget = -1 }, "non-negative"},
	}
	for _, c := range bad {
		q := good
		q.Axes.Knobs = append([]runner.KnobAxis(nil), good.Axes.Knobs...)
		cons := *good.Constraint
		q.Constraint = &cons
		c.mut(&q)
		err := q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.errSub)
		}
	}

	pareto := Question{
		Strategy:   "pareto",
		Axes:       filterAxes(seq(8, 64, 8)),
		Objectives: []Objective{{Metric: "cycles"}},
	}
	if err := pareto.Validate(); err == nil || !strings.Contains(err.Error(), "2 or 3 objectives") {
		t.Errorf("pareto with 1 objective: %v", err)
	}
	halving := Question{Strategy: "halving", Axes: filterAxes(seq(8, 64, 8))}
	if err := halving.Validate(); err == nil || !strings.Contains(err.Error(), "objective metric") {
		t.Errorf("halving without objective: %v", err)
	}
}

func TestRegistries(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Strategies {
		if st.Name == "" || st.Desc == "" || st.run == nil || st.DefaultBudget <= 0 {
			t.Errorf("strategy %+v is incomplete", st.Name)
		}
		if seen[st.Name] {
			t.Errorf("duplicate strategy %q", st.Name)
		}
		seen[st.Name] = true
	}
	seenM := map[string]bool{}
	for _, m := range Metrics() {
		if m.Name == "" || m.Desc == "" || m.Eval == nil {
			t.Errorf("metric %+v is incomplete", m.Name)
		}
		if seenM[m.Name] {
			t.Errorf("duplicate metric %q", m.Name)
		}
		seenM[m.Name] = true
	}
}

func TestParseObjectives(t *testing.T) {
	objs, cons, err := ParseObjectives([]string{"cycles", "max:hit_ratio", "energy<=1e9", "min:traffic"})
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	wantObjs := []Objective{{Metric: "cycles"}, {Metric: "hit_ratio", Goal: "max"}, {Metric: "traffic", Goal: "min"}}
	if !reflect.DeepEqual(objs, wantObjs) {
		t.Errorf("objectives = %+v, want %+v", objs, wantObjs)
	}
	if cons == nil || cons.Metric != "energy" || cons.Op != "<=" || cons.Value != 1e9 {
		t.Errorf("constraint = %+v", cons)
	}

	_, cons, err = ParseObjectives([]string{"hit_ratio~0.99"})
	if err != nil || cons == nil || cons.SlackOfBest != 0.99 || cons.Metric != "hit_ratio" {
		t.Errorf("slack clause: cons=%+v err=%v", cons, err)
	}

	if _, _, err := ParseObjectives([]string{"hit_ratio~0.99", "cycles<=5"}); err == nil {
		t.Error("two constraints should be rejected")
	}
	if _, _, err := ParseObjectives([]string{"hit_ratio~fast"}); err == nil {
		t.Error("non-numeric slack should be rejected")
	}
}
