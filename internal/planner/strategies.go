package planner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Strategy is one row of the planner's registry: a named search procedure
// over a Question's grid. Strategies are data so drivers and the drift test
// can enumerate them like knobs or analysis rules.
type Strategy struct {
	Name string
	Desc string
	// DefaultBudget caps executed probes when the Question leaves Budget 0.
	DefaultBudget int
	run           func(s *session, q Question) (Verdict, error)
}

// Strategies is the registry, in declaration order.
var Strategies = []Strategy{
	{
		Name: "knee",
		Desc: "bisect one axis for the smallest (or largest) value satisfying a metric constraint",
		// A bisection over one axis needs at most 2 + ceil(log2(n-1))
		// probes; 32 covers any axis the grid cap admits.
		DefaultBudget: 32,
		run:           runKnee,
	},
	{
		Name:          "pareto",
		Desc:          "refine a stride lattice over 2-3 axes toward the non-dominated frontier",
		DefaultBudget: 64,
		run:           runPareto,
	},
	{
		Name:          "halving",
		Desc:          "successive-halving of the axis cross-product toward one objective",
		DefaultBudget: 32,
		run:           runHalving,
	},
}

// StrategyByName resolves a registry strategy.
func StrategyByName(name string) (Strategy, bool) {
	for _, st := range Strategies {
		if st.Name == name {
			return st, true
		}
	}
	return Strategy{}, false
}

// StrategyNames returns the registered strategy names.
func StrategyNames() []string {
	names := make([]string, len(Strategies))
	for i, st := range Strategies {
		names[i] = st.Name
	}
	return names
}

// ---------------------------------------------------------------------------
// Knee bisection

// runKnee finds the boundary value of a single axis against a monotone
// predicate: the smallest (pick=smallest, the default) or largest
// (pick=largest) axis value whose metric satisfies the constraint. The
// predicate is assumed monotone along the axis — more filter entries never
// lower the hit ratio — which is what makes log2 probes sufficient where a
// sweep spends one per value.
//
// Probe order: the generous end first (for slack_of_best it defines "best",
// the same reference the sweep analyzer's knee rule uses), then the frugal
// end, then bisection of the bracket. Ties cannot arise: each step probes
// one determined point.
func runKnee(s *session, q Question) (Verdict, error) {
	d := s.g.dims[0]
	n := len(d.vals)
	c := *q.Constraint
	m, _ := MetricByName(c.Metric)

	// Positions j=0..n-1 run frugal → generous: ascending axis values when
	// picking the smallest, descending when picking the largest.
	idx := func(j int) int {
		if q.pick() == "largest" {
			return n - 1 - j
		}
		return j
	}
	at := func(j int) []int { return []int{idx(j)} }

	genVals, err := s.probe(at(n - 1))
	if err != nil {
		return kneeBestEffort(s, q, nil), err
	}
	best := genVals[c.Metric]
	pred := func(vals map[string]float64) bool {
		v := vals[c.Metric]
		if c.SlackOfBest != 0 {
			return analysis.WithinSlack(v, best, c.SlackOfBest, m.Maximize)
		}
		if c.Op == ">=" {
			return v >= c.Value
		}
		return v <= c.Value
	}
	if !pred(genVals) {
		return Verdict{
			Converged: true,
			Reason: fmt.Sprintf("no %s value satisfies the constraint: even %s=%d has %s=%g",
				d.name, d.name, d.vals[idx(n-1)], c.Metric, genVals[c.Metric]),
		}, nil
	}
	sat := n - 1 // generous end satisfies

	frugVals, err := s.probe(at(0))
	if err != nil {
		return kneeBestEffort(s, q, at(sat)), err
	}
	if pred(frugVals) {
		return Verdict{
			Converged: true,
			Reason:    kneeReason(q, d, d.vals[idx(0)], c),
			Answer:    s.answer(at(0)),
		}, nil
	}
	unsat := 0

	for sat-unsat > 1 {
		mid := (unsat + sat) / 2
		vals, err := s.probe(at(mid))
		if err != nil {
			return kneeBestEffort(s, q, at(sat)), err
		}
		if pred(vals) {
			sat = mid
		} else {
			unsat = mid
		}
	}
	return Verdict{
		Converged: true,
		Reason:    kneeReason(q, d, d.vals[idx(sat)], c),
		Answer:    s.answer(at(sat)),
	}, nil
}

func kneeReason(q Question, d dim, value int, c Constraint) string {
	want := fmt.Sprintf("%s %s %g", c.Metric, c.Op, c.Value)
	if c.SlackOfBest != 0 {
		want = fmt.Sprintf("%s within %g of best", c.Metric, c.SlackOfBest)
	}
	return fmt.Sprintf("%s %s=%d satisfying %s", q.pick(), d.name, value, want)
}

// kneeBestEffort shapes the verdict for an aborted bisection: the tightest
// known-satisfying point if one exists (correct, possibly not minimal).
func kneeBestEffort(s *session, q Question, sat []int) Verdict {
	v := Verdict{Converged: false}
	if sat != nil {
		v.Answer = s.answer(sat)
		v.Reason = fmt.Sprintf("budget of %d probes exhausted; answer satisfies the constraint but may not be the %s value",
			s.budget, q.pick())
	} else {
		v.Reason = fmt.Sprintf("budget of %d probes exhausted before any satisfying point was found", s.budget)
	}
	return v
}

// ---------------------------------------------------------------------------
// Pareto refinement

// runPareto approximates the non-dominated frontier over 2-3 axes: probe a
// coarse stride lattice, then repeatedly probe the unvisited ±stride
// neighbors of the current frontier, halving strides once a neighborhood is
// exhausted. Regions dominated at the coarse scale never get refined —
// that is the pruning. Candidates in each round are probed in Spec.Key
// order, so replans are byte-stable.
func runPareto(s *session, q Question) (Verdict, error) {
	dims := s.g.dims
	steps := make([]int, len(dims))
	for i, d := range dims {
		steps[i] = len(d.vals) / 2 // ceil((n-1)/2)
		if steps[i] < 1 {
			steps[i] = 1
		}
	}

	var probed [][]int // index vectors, in probe order
	visit := func(at []int) error {
		flat := s.g.flat(at)
		if _, ok := s.memo[flat]; ok {
			return nil
		}
		if _, err := s.probe(at); err != nil {
			return err
		}
		probed = append(probed, append([]int(nil), at...))
		return nil
	}

	// Coarse lattice: every stride multiple plus the far edge of each axis.
	lattice := make([][]int, len(dims))
	for i, d := range dims {
		for j := 0; j < len(d.vals); j += steps[i] {
			lattice[i] = append(lattice[i], j)
		}
		if last := lattice[i][len(lattice[i])-1]; last != len(d.vals)-1 {
			lattice[i] = append(lattice[i], len(d.vals)-1)
		}
	}
	if err := forEachCross(lattice, visit); err != nil {
		return paretoVerdict(s, q, probed, false), err
	}

	for {
		frontier := paretoFrontier(s, q, probed)
		var cands [][]int
		seen := map[int]bool{}
		for _, at := range frontier {
			for i := range dims {
				for _, delta := range [2]int{-steps[i], steps[i]} {
					nb := append([]int(nil), at...)
					nb[i] += delta
					if nb[i] < 0 || nb[i] >= len(dims[i].vals) {
						continue
					}
					flat := s.g.flat(nb)
					if _, ok := s.memo[flat]; ok || seen[flat] {
						continue
					}
					seen[flat] = true
					cands = append(cands, nb)
				}
			}
		}
		if len(cands) == 0 {
			allOne := true
			for _, st := range steps {
				if st > 1 {
					allOne = false
				}
			}
			if allOne {
				return paretoVerdict(s, q, probed, true), nil
			}
			for i := range steps {
				if steps[i] > 1 {
					steps[i] /= 2
				}
			}
			continue
		}
		sort.Slice(cands, func(a, b int) bool { return s.key(cands[a]) < s.key(cands[b]) })
		for _, at := range cands {
			if err := visit(at); err != nil {
				return paretoVerdict(s, q, probed, false), err
			}
		}
	}
}

// forEachCross walks the cross product of per-axis position lists in
// lexicographic order.
func forEachCross(lists [][]int, f func(at []int) error) error {
	at := make([]int, len(lists))
	var rec func(d int) error
	rec = func(d int) error {
		if d == len(lists) {
			pt := make([]int, len(lists))
			for i, j := range at {
				pt[i] = lists[i][j]
			}
			return f(pt)
		}
		for at[d] = 0; at[d] < len(lists[d]); at[d]++ {
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(q Question, a, b map[string]float64) bool {
	strict := false
	for _, o := range q.Objectives {
		av, bv := a[o.Metric], b[o.Metric]
		if o.maximize() {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// paretoFrontier filters the probed points down to the non-dominated set,
// sorted by Spec.Key. Duplicate metric vectors all survive (neither
// dominates), keeping the filter deterministic.
func paretoFrontier(s *session, q Question, probed [][]int) [][]int {
	var out [][]int
	for _, a := range probed {
		dominated := false
		for _, b := range probed {
			if dominates(q, s.memo[s.g.flat(b)], s.memo[s.g.flat(a)]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(a, b int) bool { return s.key(out[a]) < s.key(out[b]) })
	return out
}

func paretoVerdict(s *session, q Question, probed [][]int, converged bool) Verdict {
	frontier := paretoFrontier(s, q, probed)
	v := Verdict{Converged: converged}
	v.Frontier = make([]Answer, len(frontier))
	for i, at := range frontier {
		v.Frontier[i] = *s.answer(at)
	}
	objs := make([]string, len(q.Objectives))
	for i, o := range q.Objectives {
		objs[i] = o.Metric
	}
	if converged {
		v.Reason = fmt.Sprintf("frontier of %d points over %s is stable at stride 1", len(frontier), strings.Join(objs, "/"))
	} else {
		v.Reason = fmt.Sprintf("budget of %d probes exhausted; frontier of %d points over %s is best-effort",
			s.budget, len(frontier), strings.Join(objs, "/"))
	}
	return v
}

// ---------------------------------------------------------------------------
// Budgeted successive halving

// runHalving shrinks a per-axis index region around the incumbent best:
// each round probes the {lo, mid, hi} lattice of the region, moves the
// region to bracket the best point seen in that lattice (ties toward the
// smaller Spec.Key), and halves its width, until every axis is pinned.
// The answer is the best point probed anywhere, which under the budget cap
// makes this the "spend N probes as well as you can" strategy.
func runHalving(s *session, q Question) (Verdict, error) {
	dims := s.g.dims
	o := q.Objective
	lo := make([]int, len(dims))
	hi := make([]int, len(dims))
	for i, d := range dims {
		hi[i] = len(d.vals) - 1
	}

	better := func(a, b []int) bool {
		av := s.memo[s.g.flat(a)][o.Metric]
		bv := s.memo[s.g.flat(b)][o.Metric]
		if o.maximize() {
			av, bv = -av, -bv
		}
		if av != bv {
			return av < bv
		}
		return s.key(a) < s.key(b)
	}

	var best []int // over all probed points
	visit := func(at []int) error {
		if _, err := s.probe(at); err != nil {
			return err
		}
		if best == nil || better(at, best) {
			best = append(best[:0:0], at...)
		}
		return nil
	}

	for {
		done := true
		for i := range dims {
			if hi[i] > lo[i] {
				done = false
			}
		}
		if done {
			return Verdict{
				Converged: true,
				Reason: fmt.Sprintf("%s %s converged at the region's fixed point",
					objGoal(o), o.Metric),
				Answer: s.answer(best),
			}, nil
		}

		lattice := make([][]int, len(dims))
		for i := range dims {
			pts := []int{lo[i]}
			if mid := (lo[i] + hi[i]) / 2; mid != lo[i] && mid != hi[i] {
				pts = append(pts, mid)
			}
			if hi[i] != lo[i] {
				pts = append(pts, hi[i])
			}
			lattice[i] = pts
		}
		var round [][]int
		if err := forEachCross(lattice, func(at []int) error {
			round = append(round, at)
			return nil
		}); err != nil {
			return Verdict{}, err
		}
		sort.Slice(round, func(a, b int) bool { return s.key(round[a]) < s.key(round[b]) })
		for _, at := range round {
			if err := visit(at); err != nil {
				return halvingBestEffort(s, o, best), err
			}
		}

		// Best of this round's lattice steers the region.
		var rb []int
		for _, at := range round {
			if rb == nil || better(at, rb) {
				rb = at
			}
		}
		for i := range dims {
			w := hi[i] - lo[i]
			if w <= 2 {
				lo[i], hi[i] = rb[i], rb[i]
				continue
			}
			nlo := (lo[i] + rb[i]) / 2
			nhi := (rb[i] + hi[i] + 1) / 2
			lo[i], hi[i] = nlo, nhi
		}
	}
}

func objGoal(o Objective) string {
	if o.maximize() {
		return "maximizing"
	}
	return "minimizing"
}

func halvingBestEffort(s *session, o Objective, best []int) Verdict {
	v := Verdict{Converged: false}
	if best != nil {
		v.Answer = s.answer(best)
		v.Reason = fmt.Sprintf("budget of %d probes exhausted; answer is the incumbent best for %s", s.budget, o.Metric)
	} else {
		v.Reason = fmt.Sprintf("budget of %d probes exhausted before any point was measured", s.budget)
	}
	return v
}

// ---------------------------------------------------------------------------
// CLI objective grammar

// ParseObjectives decodes repeated -objective flag values into the typed
// blocks a Question takes. The grammar, one clause per flag:
//
//	metric          objective, metric's natural direction
//	min:metric      objective, explicit direction (also max:)
//	metric>=0.95    absolute constraint (also <=)
//	metric~0.99     constraint: within this factor of the best observed
//
// At most one constraint clause is allowed (knee bisects one predicate).
func ParseObjectives(clauses []string) ([]Objective, *Constraint, error) {
	var objs []Objective
	var cons *Constraint
	addCons := func(c Constraint) error {
		if cons != nil {
			return fmt.Errorf("planner: at most one constraint clause, got a second: %q", c.Metric)
		}
		cons = &c
		return nil
	}
	for _, cl := range clauses {
		cl = strings.TrimSpace(cl)
		switch {
		case strings.Contains(cl, "~"):
			name, val, _ := strings.Cut(cl, "~")
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("planner: bad slack in %q: %v", cl, err)
			}
			if err := addCons(Constraint{Metric: name, SlackOfBest: f}); err != nil {
				return nil, nil, err
			}
		case strings.Contains(cl, ">="), strings.Contains(cl, "<="):
			op := ">="
			if strings.Contains(cl, "<=") {
				op = "<="
			}
			name, val, _ := strings.Cut(cl, op)
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("planner: bad bound in %q: %v", cl, err)
			}
			if err := addCons(Constraint{Metric: name, Op: op, Value: f}); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(cl, "min:"), strings.HasPrefix(cl, "max:"):
			goal, name, _ := strings.Cut(cl, ":")
			objs = append(objs, Objective{Metric: name, Goal: goal})
		default:
			objs = append(objs, Objective{Metric: cl})
		}
	}
	return objs, cons, nil
}
